#!/usr/bin/env python3
"""Snapshot toolbox: inspect, convert and verify durable IUAD snapshots.

Run from the repo root (or anywhere with ``repro`` importable)::

    python tools/snapshot.py inspect  fitted.jsonl
    python tools/snapshot.py inspect  fitted.jsonl --json
    python tools/snapshot.py convert  fitted.jsonl fitted.sqlite
    python tools/snapshot.py verify   fitted.sqlite

* ``inspect`` — header, counts and stream counters, without fully
  materialising the fitted objects (reads the document only).
  ``--json`` emits the validated machine-readable header
  (:func:`repro.io.snapshot_header`) for scripting — the serve CLI and
  the CI serving-smoke job use it to sanity-check a snapshot before a
  full decode.  Corrupt or non-snapshot files exit 1 with a one-line
  error, never a traceback;
* ``convert`` — re-write a snapshot in the other backend (the payload is
  backend-neutral, so conversion is lossless in both directions);
* ``verify`` — fully decode the snapshot and run the structural
  invariant sweep (:func:`repro.io.verify_snapshot`): unique mention
  ownership, mention/corpus consistency, the ``next_vid`` watermark,
  edge sanity, shard-index coverage.  Exit code 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.io import (  # noqa: E402 (path setup above)
    Snapshot,
    read_document,
    resolve_backend,
    snapshot_header,
    verify_snapshot,
    write_document,
)


def cmd_inspect(args: argparse.Namespace) -> int:
    path = Path(args.path)
    # Header validation first: every corruption mode (missing file, bad
    # magic, truncated tables, version drift) becomes a one-line error
    # and exit code 1 — machine consumers never have to parse tracebacks.
    try:
        header = snapshot_header(path)
    except ValueError as exc:
        print(f"inspect: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
        return 0
    document = read_document(path)
    sections = document["sections"]
    tables = document["tables"]
    print(
        f"snapshot   {path} ({header['backend']}, {header['bytes']} bytes)"
    )
    print(f"format     {header['format']} v{header['version']}")
    print(f"kind       {header['kind']}")
    print(f"papers     {len(tables.get('papers', []))}")
    print(
        f"gcn        {len(tables.get('gcn_vertices', []))} vertices / "
        f"{len(tables.get('gcn_edges', []))} edges "
        f"(next_vid {sections['gcn_meta']['next_vid']})"
    )
    if "scn_meta" in sections:
        print(
            f"scn        {len(tables.get('scn_vertices', []))} vertices / "
            f"{len(tables.get('scn_edges', []))} edges"
        )
    model = sections.get("model", {})
    print(
        f"model      prior_match={model.get('prior_match'):.6f} "
        f"families={','.join(model.get('families', []))}"
    )
    rows = tables.get("embedding_rows")
    print(
        "embeddings "
        + (f"{len(rows)} words" if rows else "none (keyword-cosine fallback)")
    )
    if "sharding" in sections:
        sharding = sections["sharding"]
        plan = sharding.get("plan")
        print(
            "sharding   "
            + (f"{len(plan['shards'])} shards, " if plan else "")
            + f"{len(sharding['index']['name_to_shard'])} routed names, "
            f"{sharding['index']['n_bridges']} bridges, "
            f"{len(sharding['cannot_links'])} cannot-links"
        )
    if "stream" in sections:
        stream = sections["stream"]
        print(
            f"stream     {stream['n_papers']} papers / "
            f"{stream['n_mentions']} mentions ingested "
            f"({stream['n_attached']} attached, {stream['n_created']} "
            f"created, {stream['n_duplicates']} duplicates)"
        )
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    src, dst = Path(args.src), Path(args.dst)
    if src.resolve() == dst.resolve():
        print("convert: source and destination are the same file",
              file=sys.stderr)
        return 1
    document = read_document(src)
    write_document(document, dst, backend=args.backend)
    print(
        f"convert: {src} ({resolve_backend(src).name}) -> "
        f"{dst} ({resolve_backend(dst).name})"
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    try:
        snapshot = Snapshot.load(args.path)
    except (ValueError, FileNotFoundError) as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 1
    errors = verify_snapshot(snapshot)
    for error in errors:
        print(f"verify: {error}", file=sys.stderr)
    if errors:
        print(f"verify: FAILED ({len(errors)} violations)", file=sys.stderr)
        return 1
    print(
        f"verify: OK — {len(snapshot.corpus)} papers, "
        f"{len(snapshot.gcn)} GCN vertices, "
        f"{snapshot.gcn.n_mentions} mentions, schema v{snapshot.version}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="snapshot.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="print header and counts")
    p_inspect.add_argument("path")
    p_inspect.add_argument(
        "--json", action="store_true",
        help="emit the validated machine-readable header as JSON",
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_convert = sub.add_parser("convert", help="re-write in another backend")
    p_convert.add_argument("src")
    p_convert.add_argument("dst")
    p_convert.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default=None,
        help="force the destination backend (default: by suffix)",
    )
    p_convert.set_defaults(func=cmd_convert)

    p_verify = sub.add_parser("verify", help="decode fully + invariant sweep")
    p_verify.add_argument("path")
    p_verify.set_defaults(func=cmd_verify)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
