#!/usr/bin/env python3
"""Serve a fitted disambiguation snapshot over async HTTP.

Warm-starts from a durable ``repro.io`` snapshot and exposes the
reader/writer-split service (:mod:`repro.service`)::

    python tools/serve.py --snapshot fitted.jsonl --port 8080

    curl 'http://127.0.0.1:8080/healthz'
    curl 'http://127.0.0.1:8080/who-is?name=X%20Y&pid=4&position=0'
    curl 'http://127.0.0.1:8080/resolve?name=X%20Y&pid=4'
    curl -X POST 'http://127.0.0.1:8080/ingest' \\
         -d '{"papers": [{"pid": 99, "authors": ["X Y"], \\
              "title": "new paper", "venue": "VLDB", "year": 2024}]}'

Reads are answered from an immutable :class:`~repro.service.FittedView`
inside the event loop; ingest bursts run in a writer thread and publish
a fresh view via one atomic swap — readers never block on ingest.  With
``--port 0`` an ephemeral port is chosen and announced on stdout as::

    SERVING http://127.0.0.1:<port> generation=0 papers=<n>

which the load harness (``benchmarks/_serving_driver.py``) parses.
``--checkpoint`` enables durable checkpoints (``POST /checkpoint`` and,
when the snapshot's config sets ``checkpoint_every_n_papers``, automatic
post-burst checkpoints) — taken between bursts, never mid-burst.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import StreamingIngestor  # noqa: E402 (path setup above)
from repro.io import snapshot_header  # noqa: E402
from repro.service import Engine, ServiceServer  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="serve.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--snapshot", required=True,
        help="durable snapshot to warm-start from (jsonl or sqlite)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 = ephemeral; the chosen port is announced)",
    )
    from repro.io import list_adapters

    parser.add_argument(
        "--backend", choices=tuple(list_adapters()), default=None,
        help="force the snapshot adapter (default: sniffed)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="max queued ingest requests coalesced into one burst",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="enable durable checkpoints to PATH (between bursts only)",
    )
    parser.add_argument(
        "--checkpoint-mode", choices=("full", "delta"), default=None,
        help="override the snapshot config's checkpoint_mode: full "
             "rewrites the snapshot, delta appends O(burst) records to "
             "PATH.delta (see repro.io.delta)",
    )
    parser.add_argument(
        "--switch-interval", type=float, default=0.001,
        help="sys.setswitchinterval for the process (bounds how long the "
             "GIL-holding writer thread can stall an event-loop read)",
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    ingestor = StreamingIngestor.resume(
        args.snapshot,
        backend=args.backend,
        checkpoint_path=args.checkpoint,
    )
    if args.checkpoint is None:
        # resume() points auto-checkpoints back at the source snapshot;
        # a serve-only process must never overwrite its warm-start file.
        ingestor.checkpoint_path = None
    if args.checkpoint_mode is not None:
        ingestor.set_checkpoint_mode(args.checkpoint_mode)
    engine = Engine(ingestor, max_batch=args.max_batch)
    await engine.start()
    server = ServiceServer(engine, host=args.host, port=args.port)
    await server.start()
    view = engine.view
    print(
        f"SERVING {server.url} generation={view.generation} "
        f"papers={view.n_papers}",
        flush=True,
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("shutting down (draining the ingest queue)", flush=True)
    await server.stop()
    await engine.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Validate the header before the (much more expensive) full decode:
    # a corrupt snapshot is a one-line error and exit 2, not a traceback.
    try:
        header = snapshot_header(args.snapshot, backend=args.backend)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    print(
        f"warm-starting from {header['path']} "
        f"({header['backend']}, schema v{header['version']}, "
        f"{header['n_papers']} papers, {header['n_vertices']} vertices)",
        flush=True,
    )
    sys.setswitchinterval(args.switch_interval)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
