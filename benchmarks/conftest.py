"""Shared state for the table/figure benches.

The experiment context (default synthetic corpus + Table-II-style testing
subset) is built once per session; every bench reproduces one exhibit of
the paper and asserts its *shape* facts (who wins, what improves, what the
trend is) rather than absolute numbers — the substrate is a synthetic
corpus, not the authors' DBLP dump.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentContext, make_context


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return make_context()
