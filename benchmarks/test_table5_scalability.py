"""Table V — average per-name disambiguation time vs data scale.

Paper: IUAD is fastest at every scale (2.6 s/name at 100 %), Aminer is the
fastest baseline, GHOST is slowest and degrades super-linearly (183 s/name).
Shape facts: IUAD beats the baseline *average* at full scale, GHOST and
ANON cost grows with scale, everyone's time grows with the corpus.

The sharded variant compares a single-process ``IUAD.fit`` on the bench's
largest synthetic corpus against ``ShardedIUAD.fit`` with four workers,
pins shard-vs-global parity, and records both wall-clocks plus the
per-shard counters to ``BENCH_sharding.json`` at the repo root.  The ≥2×
speedup floor is asserted only where it is physically meaningful: full
mode on a machine with at least four CPU cores (the parallel region is
the γ/profile work, ~70 % of a fit).  On fewer cores — or in
``BENCH_QUICK=1`` smoke mode — the run still records the measured numbers
and enforces parity plus a bounded-overhead sanity ceiling.
"""

import os
from pathlib import Path

import pytest

from repro.core import IUAD, IUADConfig, ShardedIUAD
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.experiments import run_table5
from repro.eval.reporting import render_table5
from repro.eval.timing import StageTimer, shard_summary, write_benchmark_json


@pytest.fixture(scope="module")
def table5():
    return run_table5(fractions=(0.2, 0.6, 1.0), n_names=10)


def test_table5_timings(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_table5(table5))
    assert set(table5) == {"ANON", "NetE", "Aminer", "GHOST", "IUAD"}


def test_costs_grow_with_scale(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for method, per_fraction in table5.items():
        small = per_fraction[0.2].avg_seconds_per_name
        full = per_fraction[1.0].avg_seconds_per_name
        assert full >= 0.3 * small, f"{method} timing collapsed with scale"


def test_ghost_grows_superlinearly(benchmark, table5):
    """GHOST's path computations blow up with corpus size (183 s in the
    paper); its full-scale cost must exceed its 20 % cost by a large
    factor."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ghost = table5["GHOST"]
    assert (
        ghost[1.0].avg_seconds_per_name >= 2.0 * ghost[0.2].avg_seconds_per_name
    )


def test_iuad_is_competitive(benchmark, table5):
    """IUAD's amortised per-name cost stays within the baseline range (the
    paper reports it fastest; our IUAD carries the whole global pipeline
    while baselines only cluster 10 ego-networks)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = {m: t[1.0].avg_seconds_per_name for m, t in table5.items()}
    baseline_costs = [v for m, v in full.items() if m != "IUAD"]
    assert full["IUAD"] <= 3.0 * max(baseline_costs)


# --------------------------------------------------------------------- #
# sharded execution: wall-clock vs single-process fit
# --------------------------------------------------------------------- #
QUICK = os.environ.get("BENCH_QUICK", "") == "1"
N_WORKERS = 4
MIN_SPEEDUP = 2.0
CPU_COUNT = os.cpu_count() or 1
# The tracked record exists to evidence the ≥2× claim, so only machines
# able to honestly measure it (full mode, ≥ N_WORKERS cores) write it;
# smoke runs and under-provisioned boxes record to the untracked quick
# file instead of committing a number that contradicts the claim.
SHARD_OUT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_sharding.json"
    if not QUICK and CPU_COUNT >= N_WORKERS
    else "BENCH_sharding.quick.json"
)


def _largest_bench_corpus():
    """The largest corpus of the scalability sweep.

    Like the similarity bench, the name pool is concentrated so candidate
    blocks are big and pair scoring (the shardable work) dominates the
    fit — the regime sharding exists for.  Quick mode shrinks the world
    for CI smoke runs.
    """
    if QUICK:
        cfg = SyntheticConfig(
            n_authors=900, n_papers=2000, name_pool_size=300,
            n_communities=70, seed=7,
        )
    else:
        cfg = SyntheticConfig(
            n_authors=3500, n_papers=8000, name_pool_size=420, seed=7,
        )
    return SyntheticDBLP(cfg).generate()


def _clusterings(est, names):
    return {
        n: sorted(
            sorted(units)
            for units in est.mention_clusters_of_name(n).values()
        )
        for n in names
    }


def test_sharded_fit_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    timer = StageTimer()
    with timer.stage("corpus"):
        corpus = _largest_bench_corpus()

    with timer.stage("fit_single_process"):
        single = IUAD(IUADConfig()).fit(corpus)
    with timer.stage("fit_sharded_4_workers"):
        sharded = ShardedIUAD(IUADConfig(n_workers=N_WORKERS)).fit(corpus)

    # Parity gates the speedup claim: identical mention clusterings.
    # (Serial-vs-pool parity is pinned separately by
    # tests/test_sharding_parity.py.)
    names = corpus.names
    assert _clusterings(sharded, names) == _clusterings(single, names)

    stages = timer.as_dict()
    speedup = stages["fit_single_process"] / stages["fit_sharded_4_workers"]
    payload = write_benchmark_json(
        SHARD_OUT_PATH,
        "sharded_fit",
        stages,
        quick=QUICK,
        n_workers=N_WORKERS,
        cpu_count=CPU_COUNT,
        n_papers=len(corpus),
        speedup_vs_single=round(speedup, 3),
        parity="identical mention clusterings (single vs sharded pool)",
        shards=shard_summary(sharded.report_),
    )
    assert payload["shards"]["n_shards"] >= 1

    if not QUICK and CPU_COUNT >= N_WORKERS:
        # The honest claim: ≥2× wall-clock over the single-process fit on
        # the largest bench corpus with four real cores under them.
        assert speedup >= MIN_SPEEDUP, (
            f"sharded fit speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x floor on {cpu_count} cores"
        )
    else:
        # Not enough cores (or smoke mode) for parallel wall-clock wins —
        # four workers time-slicing one core can only lose, which is why
        # such runs record to the untracked quick file.  Sharding must
        # still stay within bounded overhead of the single-process fit:
        # it repartitions, forks, pickles results and stitches.
        assert stages["fit_sharded_4_workers"] <= 6.0 * max(
            stages["fit_single_process"], 0.05
        ), "sharded fit overhead exploded"
