"""Table V — average per-name disambiguation time vs data scale.

Paper: IUAD is fastest at every scale (2.6 s/name at 100 %), Aminer is the
fastest baseline, GHOST is slowest and degrades super-linearly (183 s/name).
Shape facts: IUAD beats the baseline *average* at full scale, GHOST and
ANON cost grows with scale, everyone's time grows with the corpus.

The sharded variant compares a single-process ``IUAD.fit`` on the bench's
largest synthetic corpus against ``ShardedIUAD.fit`` with
``BENCH_SHARD_WORKERS`` workers (default 4), pins shard-vs-global parity,
and records both wall-clocks plus the per-shard and pipeline counters to
``BENCH_sharding.json`` at the repo root.  Each fit runs in its own
interpreter process (``_shard_bench_driver.py``) so the pool's fork
never inherits the pytest process's accumulated heap — inline
measurement made the "sharded" wall a function of which tests ran
first (copy-on-write faults on inherited pages), not of the executor.  The ≥2× speedup floor is
asserted only where it is physically meaningful: full mode on a machine
with at least ``N_WORKERS`` CPU cores (the parallel region is the
γ/profile work, ~70 % of a fit).  Quick runs (``BENCH_QUICK=1`` smoke
mode, or any under-provisioned box) record to
``BENCH_sharding.quick.json`` with an honest ``quick: true`` stamp and
enforce parity plus either a ≥0.9× no-regression floor (≥2 cores and ≥2
workers — the CI smoke job) or a bounded-overhead ceiling (1 core).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.experiments import run_table5
from repro.eval.reporting import render_table5
from repro.eval.timing import write_benchmark_json


@pytest.fixture(scope="module")
def table5():
    return run_table5(fractions=(0.2, 0.6, 1.0), n_names=10)


def test_table5_timings(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_table5(table5))
    assert set(table5) == {"ANON", "NetE", "Aminer", "GHOST", "IUAD"}


def test_costs_grow_with_scale(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for method, per_fraction in table5.items():
        small = per_fraction[0.2].avg_seconds_per_name
        full = per_fraction[1.0].avg_seconds_per_name
        assert full >= 0.3 * small, f"{method} timing collapsed with scale"


def test_ghost_grows_superlinearly(benchmark, table5):
    """GHOST's path computations blow up with corpus size (183 s in the
    paper); its full-scale cost must exceed its 20 % cost by a large
    factor."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ghost = table5["GHOST"]
    assert (
        ghost[1.0].avg_seconds_per_name >= 2.0 * ghost[0.2].avg_seconds_per_name
    )


def test_iuad_is_competitive(benchmark, table5):
    """IUAD's amortised per-name cost stays within the baseline range (the
    paper reports it fastest; our IUAD carries the whole global pipeline
    while baselines only cluster 10 ego-networks)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = {m: t[1.0].avg_seconds_per_name for m, t in table5.items()}
    baseline_costs = [v for m, v in full.items() if m != "IUAD"]
    assert full["IUAD"] <= 3.0 * max(baseline_costs)


# --------------------------------------------------------------------- #
# sharded execution: wall-clock vs single-process fit
# --------------------------------------------------------------------- #
QUICK_ENV = os.environ.get("BENCH_QUICK", "") == "1"
N_WORKERS = int(os.environ.get("BENCH_SHARD_WORKERS", "4"))
MIN_SPEEDUP = 2.0
QUICK_MIN_SPEEDUP = 0.9
CPU_COUNT = os.cpu_count() or 1
# The tracked record exists to evidence the ≥2× claim, so only machines
# able to honestly measure it (full mode, ≥ N_WORKERS cores) run in full
# mode; smoke runs and under-provisioned boxes are *quick* runs and
# record to the untracked quick file instead of committing a number that
# contradicts the claim.  ``RECORD_QUICK`` is the actual run mode — it is
# what gets stamped into the record, and ``write_benchmark_json`` refuses
# a record whose stamp disagrees with its path, so the provenance drift
# that once put ``"quick": false`` into ``BENCH_sharding.quick.json``
# now fails loudly instead of committing.
RECORD_QUICK = QUICK_ENV or CPU_COUNT < N_WORKERS
REPO_ROOT = Path(__file__).resolve().parents[1]
SHARD_OUT_PATH = REPO_ROOT / (
    "BENCH_sharding.quick.json" if RECORD_QUICK else "BENCH_sharding.json"
)
DRIVER = Path(__file__).with_name("_shard_bench_driver.py")


def _run_driver(mode, *extra):
    """One fit in a fresh interpreter (see the driver's docstring: inline
    pool measurement is biased by whatever heap the preceding tests left
    behind to be copy-on-write-inherited at fork)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(DRIVER), mode, *extra],
        capture_output=True, text=True, timeout=1800, env=env,
    )
    assert proc.returncode == 0, f"{mode} driver failed:\n{proc.stderr[-2000:]}"
    return json.loads(proc.stdout)


def test_sharded_fit_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick_flag = ("--quick",) if QUICK_ENV else ()
    single = _run_driver("single", *quick_flag)
    sharded = _run_driver(
        "sharded", "--workers", str(N_WORKERS), *quick_flag
    )

    # Parity gates the speedup claim: identical mention clusterings.
    # (Serial-vs-pool parity is pinned separately by
    # tests/test_sharding_parity.py.)
    assert sharded["clusterings"] == single["clusterings"]

    stages = {
        "corpus": single["corpus_seconds"],
        "fit_single_process": single["fit_seconds"],
        f"fit_sharded_{N_WORKERS}_workers": sharded["fit_seconds"],
    }
    sharded_wall = sharded["fit_seconds"]
    speedup = single["fit_seconds"] / sharded_wall
    payload = write_benchmark_json(
        SHARD_OUT_PATH,
        "sharded_fit",
        stages,
        quick=RECORD_QUICK,
        quick_env=QUICK_ENV,
        n_workers=N_WORKERS,
        cpu_count=CPU_COUNT,
        n_papers=sharded["n_papers"],
        speedup_vs_single=round(speedup, 3),
        parity="identical mention clusterings (single vs sharded pool)",
        shards=sharded["shards"],
    )
    assert payload["shards"]["n_shards"] >= 1

    if not RECORD_QUICK:
        # The honest claim: ≥2× wall-clock over the single-process fit on
        # the largest bench corpus with enough real cores under it.
        assert speedup >= MIN_SPEEDUP, (
            f"sharded fit speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x floor on {CPU_COUNT} cores"
        )
    elif CPU_COUNT >= 2 and N_WORKERS >= 2:
        # Quick mode with real parallelism available (the CI smoke job:
        # 2 workers on a multi-core runner).  The pool must at least not
        # *lose* to the single-process fit — the 0.36×-class slowdown
        # this floor exists for fails here instead of living only in an
        # unreviewed JSON record.
        assert speedup >= QUICK_MIN_SPEEDUP, (
            f"sharded fit speedup {speedup:.2f}x below the quick-mode "
            f"{QUICK_MIN_SPEEDUP}x no-regression floor "
            f"({N_WORKERS} workers, {CPU_COUNT} cores)"
        )
    else:
        # One core: workers can only time-slice it, so wall-clock wins
        # are physically impossible and only bounded overhead is
        # asserted — the pipelined executor's fork/IPC tax on top of the
        # serial work, which shared-memory transport keeps small.
        # Isolated-subprocess ratios observed on a noisy 1-core VM span
        # ~1.1–3.4×; the 6× ceiling rides above that scheduler noise
        # while still failing loudly on the ~11× copy-on-write fault
        # storm this bound exists for.
        assert sharded_wall <= 6.0 * max(
            stages["fit_single_process"], 0.05
        ), "sharded fit overhead exploded"
