"""Table V — average per-name disambiguation time vs data scale.

Paper: IUAD is fastest at every scale (2.6 s/name at 100 %), Aminer is the
fastest baseline, GHOST is slowest and degrades super-linearly (183 s/name).
Shape facts: IUAD beats the baseline *average* at full scale, GHOST and
ANON cost grows with scale, everyone's time grows with the corpus.
"""

import pytest

from repro.eval.experiments import run_table5
from repro.eval.reporting import render_table5


@pytest.fixture(scope="module")
def table5():
    return run_table5(fractions=(0.2, 0.6, 1.0), n_names=10)


def test_table5_timings(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_table5(table5))
    assert set(table5) == {"ANON", "NetE", "Aminer", "GHOST", "IUAD"}


def test_costs_grow_with_scale(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for method, per_fraction in table5.items():
        small = per_fraction[0.2].avg_seconds_per_name
        full = per_fraction[1.0].avg_seconds_per_name
        assert full >= 0.3 * small, f"{method} timing collapsed with scale"


def test_ghost_grows_superlinearly(benchmark, table5):
    """GHOST's path computations blow up with corpus size (183 s in the
    paper); its full-scale cost must exceed its 20 % cost by a large
    factor."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ghost = table5["GHOST"]
    assert (
        ghost[1.0].avg_seconds_per_name >= 2.0 * ghost[0.2].avg_seconds_per_name
    )


def test_iuad_is_competitive(benchmark, table5):
    """IUAD's amortised per-name cost stays within the baseline range (the
    paper reports it fastest; our IUAD carries the whole global pipeline
    while baselines only cluster 10 ego-networks)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = {m: t[1.0].avg_seconds_per_name for m, t in table5.items()}
    baseline_costs = [v for m, v in full.items() if m != "IUAD"]
    assert full["IUAD"] <= 3.0 * max(baseline_costs)
