"""Figure 5 — IUAD quality vs data scale.

Paper: precision stays flat and high across 20–100 % of the data, recall
climbs from ≈0.5 to >0.81 as the corpus grows (more data → better GCN).
Shape facts: precision never collapses at small scale; recall and F at
full scale beat the 20 % point.
"""

import pytest

from repro.eval.experiments import run_fig5
from repro.eval.reporting import render_fig5


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(fractions=(0.2, 0.4, 0.6, 0.8, 1.0))


def test_fig5_data_scale(benchmark, fig5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_fig5(fig5))
    assert set(fig5) == {0.2, 0.4, 0.6, 0.8, 1.0}


def test_precision_high_at_all_scales(benchmark, fig5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for fraction, counts in fig5.items():
        assert counts.precision >= 0.55, f"precision collapsed at {fraction:.0%}"


def test_recall_improves_with_scale(benchmark, fig5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fig5[1.0].recall >= fig5[0.2].recall + 0.05


def test_f1_improves_with_scale(benchmark, fig5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fig5[1.0].f1 >= fig5[0.2].f1
