"""Snapshot I/O throughput: save/load papers-per-second, both backends.

Fits one synthetic corpus, then measures, for the JSONL and the SQLite
backend: serialize+write (``save``), read+decode+rebuild (``load``), and
the on-disk size.  Round-trip *exactness* is asserted in every mode —
the restored network, model parameters and name-index order must be
identical to the fitted ones (the resume-parity contract of
``tests/test_snapshot_parity.py``, re-checked here at bench scale).

The delta sweep measures the point of the append-only checkpoint format
(:mod:`repro.io.delta`): a delta append after a fixed-size burst must
stay **flat** as the corpus grows — the recorded latencies pin append at
the largest corpus within 2× of the smallest — while a full-snapshot
write at the same moments grows with the corpus.  ``who_is`` straight
from the indexed SQLite file (:mod:`repro.io.query`) is timed next to
the full-materialisation load it avoids.

The record lands in ``BENCH_snapshot.json`` at the repo root (tracked;
full-mode runs refresh it — commit the refresh together with io/
changes).  ``BENCH_QUICK=1`` smoke runs shrink the corpus and record to
the untracked ``BENCH_snapshot.quick.json`` instead.  Both tests merge
into the same record, so either can run alone.  Throughput floors are
deliberately loose (I/O on shared runners is noisy); the headline
numbers are the recorded ones.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.data.records import Corpus
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.timing import snapshot_summary, write_benchmark_json
from repro.io import Snapshot, SnapshotQuery, delta_log_path, snapshot_of

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

OUT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_snapshot.quick.json" if QUICK else "BENCH_snapshot.json"
)

BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(scope="module")
def fitted():
    if QUICK:
        cfg = SyntheticConfig(
            n_authors=300, n_papers=700, name_pool_size=200,
            n_communities=30, seed=5,
        )
    else:
        cfg = SyntheticConfig(
            n_authors=1200, n_papers=3000, name_pool_size=500,
            n_communities=80, seed=5,
        )
    corpus = SyntheticDBLP(cfg).generate()
    return IUAD(IUADConfig()).fit(corpus)


def _roundtrip(fitted, backend, path):
    t0 = time.perf_counter()
    fitted.save(path, backend=backend)
    save_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    loaded = IUAD.load(path)
    load_seconds = time.perf_counter() - t1

    # exactness at bench scale, both directions of the boundary
    assert loaded.gcn_.export_parts() == fitted.gcn_.export_parts()
    assert loaded.scn_.export_parts() == fitted.scn_.export_parts()
    assert loaded.model_.state_dict() == fitted.model_.state_dict()
    return save_seconds, load_seconds, path.stat().st_size


def test_snapshot_io_throughput(benchmark, fitted, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n_papers = len(fitted.corpus_)
    stages: dict[str, float] = {}
    sizes: dict[str, int] = {}
    for backend in BACKENDS:
        suffix = "sqlite" if backend == "sqlite" else "jsonl"
        save_s, load_s, size = _roundtrip(
            fitted, backend, tmp_path / f"bench.{suffix}"
        )
        stages[f"save_{backend}"] = save_s
        stages[f"load_{backend}"] = load_s
        sizes[backend] = size
        # loose sanity floor: persistence must stay orders of magnitude
        # cheaper than the fit it makes resumable
        assert save_s < 60 and load_s < 60
    payload = _merge_record(
        stages, **snapshot_summary(stages, n_papers, sizes)
    )
    print("\nsnapshot i/o:", payload)


DELTA_SIZES = (200, 400, 800) if QUICK else (750, 1500, 3000)
BURST = 16          # papers per delta append — fixed across corpus sizes
APPEND_REPEATS = 3  # appends per size; min damps fsync jitter


def _merge_record(stages, **extra):
    """Fold new measurements into the existing record on disk, so the
    throughput test and the delta sweep can refresh it independently."""
    previous = (
        json.loads(OUT_PATH.read_text(encoding="utf-8"))
        if OUT_PATH.exists()
        else {}
    )
    merged_stages = {**previous.get("stages", {}), **stages}
    merged_extra = {
        key: value
        for key, value in previous.items()
        if key not in ("benchmark", "stages")
    }
    merged_extra.update(extra)
    merged_extra["quick"] = QUICK
    return write_benchmark_json(
        OUT_PATH, "snapshot_io", merged_stages, **merged_extra
    )


def test_delta_append_flat_while_full_save_grows(tmp_path):
    """The O(burst) durability claim, measured: delta-append latency is
    corpus-size independent; the full save it replaces is O(corpus)."""
    append_best: dict[int, float] = {}
    full_save: dict[int, float] = {}
    log_bytes: dict[int, int] = {}
    largest = DELTA_SIZES[-1]
    who_is_per_query = full_load_seconds = None
    for n in DELTA_SIZES:
        cfg = SyntheticConfig(
            n_authors=max(120, n // 2),
            n_papers=n + BURST * APPEND_REPEATS,
            name_pool_size=max(80, n // 3),
            n_communities=max(12, n // 25),
            seed=5,
        )
        papers = list(SyntheticDBLP(cfg).generate())
        assert len(papers) == n + BURST * APPEND_REPEATS  # non-empty bursts
        estimator = IUAD(IUADConfig(checkpoint_mode="delta")).fit(
            Corpus(papers[:n])
        )
        base = tmp_path / f"delta_{n}.sqlite"
        ingestor = StreamingIngestor(
            estimator, checkpoint_path=base, checkpoint_backend="sqlite"
        )
        ingestor.checkpoint()  # the base write — O(corpus), not timed here
        times = []
        for i in range(APPEND_REPEATS):
            ingestor.add_papers(papers[n + i * BURST: n + (i + 1) * BURST])
            t0 = time.perf_counter()
            ingestor.checkpoint()  # one O(burst) delta append
            times.append(time.perf_counter() - t0)
        append_best[n] = min(times)
        log_bytes[n] = delta_log_path(base).stat().st_size
        t0 = time.perf_counter()
        snapshot_of(ingestor.iuad, stream=ingestor.report).save(
            tmp_path / f"full_{n}.jsonl"
        )
        full_save[n] = time.perf_counter() - t0

        if n == largest:
            # who-is straight off the indexed file vs materialising
            names = sorted({p.authors[0] for p in papers})[:25]
            t0 = time.perf_counter()
            with SnapshotQuery(base) as query:
                for name in names:
                    query.who_is(name)
            who_is_per_query = (time.perf_counter() - t0) / len(names)
            from repro.service.view import FittedView

            t0 = time.perf_counter()
            FittedView.from_snapshot(base)
            full_load_seconds = time.perf_counter() - t0

    smallest = DELTA_SIZES[0]
    # the format's contract: append cost does not follow the corpus
    assert append_best[largest] <= max(2 * append_best[smallest], 0.02), (
        append_best
    )
    # …while the full save it replaces does
    assert full_save[largest] > full_save[smallest], full_save
    assert who_is_per_query < full_load_seconds

    stages = {f"delta_append_{n}": append_best[n] for n in DELTA_SIZES}
    stages.update({f"full_save_{n}": full_save[n] for n in DELTA_SIZES})
    stages["who_is_sql_per_query"] = who_is_per_query
    stages["full_view_load"] = full_load_seconds
    payload = _merge_record(
        stages,
        delta_corpus_sizes=list(DELTA_SIZES),
        delta_burst_papers=BURST,
        delta_append_ratio_largest_vs_smallest=round(
            append_best[largest] / max(append_best[smallest], 1e-9), 2
        ),
        delta_log_bytes_largest=log_bytes[largest],
    )
    print("\ndelta append:", payload)


def test_checkpoint_overhead_is_bounded(fitted, tmp_path):
    """An auto-checkpoint (the streaming path's unit of durability) costs
    one save; it must not dwarf the ingest it protects."""
    snapshot = snapshot_of(fitted)
    t0 = time.perf_counter()
    snapshot.save(tmp_path / "ck.jsonl")
    seconds = time.perf_counter() - t0
    reloaded = Snapshot.load(tmp_path / "ck.jsonl")
    assert len(reloaded.gcn) == len(fitted.gcn_)
    assert seconds < 30
