"""Snapshot I/O throughput: save/load papers-per-second, both backends.

Fits one synthetic corpus, then measures, for the JSONL and the SQLite
backend: serialize+write (``save``), read+decode+rebuild (``load``), and
the on-disk size.  Round-trip *exactness* is asserted in every mode —
the restored network, model parameters and name-index order must be
identical to the fitted ones (the resume-parity contract of
``tests/test_snapshot_parity.py``, re-checked here at bench scale).

The record lands in ``BENCH_snapshot.json`` at the repo root (tracked;
full-mode runs refresh it — commit the refresh together with io/
changes).  ``BENCH_QUICK=1`` smoke runs shrink the corpus and record to
the untracked ``BENCH_snapshot.quick.json`` instead.  Throughput floors
are deliberately loose (I/O on shared runners is noisy); the headline
numbers are the recorded ones.
"""

import os
import time
from pathlib import Path

import pytest

from repro.core import IUAD, IUADConfig
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.timing import snapshot_summary, write_benchmark_json
from repro.io import Snapshot, snapshot_of

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

OUT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_snapshot.quick.json" if QUICK else "BENCH_snapshot.json"
)

BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(scope="module")
def fitted():
    if QUICK:
        cfg = SyntheticConfig(
            n_authors=300, n_papers=700, name_pool_size=200,
            n_communities=30, seed=5,
        )
    else:
        cfg = SyntheticConfig(
            n_authors=1200, n_papers=3000, name_pool_size=500,
            n_communities=80, seed=5,
        )
    corpus = SyntheticDBLP(cfg).generate()
    return IUAD(IUADConfig()).fit(corpus)


def _roundtrip(fitted, backend, path):
    t0 = time.perf_counter()
    fitted.save(path, backend=backend)
    save_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    loaded = IUAD.load(path)
    load_seconds = time.perf_counter() - t1

    # exactness at bench scale, both directions of the boundary
    assert loaded.gcn_.export_parts() == fitted.gcn_.export_parts()
    assert loaded.scn_.export_parts() == fitted.scn_.export_parts()
    assert loaded.model_.state_dict() == fitted.model_.state_dict()
    return save_seconds, load_seconds, path.stat().st_size


def test_snapshot_io_throughput(benchmark, fitted, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n_papers = len(fitted.corpus_)
    stages: dict[str, float] = {}
    sizes: dict[str, int] = {}
    for backend in BACKENDS:
        suffix = "sqlite" if backend == "sqlite" else "jsonl"
        save_s, load_s, size = _roundtrip(
            fitted, backend, tmp_path / f"bench.{suffix}"
        )
        stages[f"save_{backend}"] = save_s
        stages[f"load_{backend}"] = load_s
        sizes[backend] = size
        # loose sanity floor: persistence must stay orders of magnitude
        # cheaper than the fit it makes resumable
        assert save_s < 60 and load_s < 60
    payload = write_benchmark_json(
        OUT_PATH, "snapshot_io", stages, quick=QUICK,
        **snapshot_summary(stages, n_papers, sizes),
    )
    print("\nsnapshot i/o:", payload)


def test_checkpoint_overhead_is_bounded(fitted, tmp_path):
    """An auto-checkpoint (the streaming path's unit of durability) costs
    one save; it must not dwarf the ingest it protects."""
    snapshot = snapshot_of(fitted)
    t0 = time.perf_counter()
    snapshot.save(tmp_path / "ck.jsonl")
    seconds = time.perf_counter() - t0
    reloaded = Snapshot.load(tmp_path / "ck.jsonl")
    assert len(reloaded.gcn) == len(fitted.gcn_)
    assert seconds < 30
