"""Subprocess driver for the sharded-fit benchmark.

``test_sharded_fit_speedup`` runs the single-process and the sharded
fit in *separate interpreter processes* (one ``python -m``-style
invocation each) instead of inline in the pytest process.  Inline
measurement is systematically biased on the pool path: the executor
forks its workers from whatever heap the preceding benchmarks left
behind, and every transient allocation in a worker then lands on a
copy-on-write page inherited from that dirty heap — the measured
"sharded" wall grows with the number of tests that happened to run
first.  A fresh process per fit makes the comparison a function of the
executor alone, reproducible standalone and under the full suite.

Output: one JSON document on stdout — timings, corpus size, the full
mention clusterings (the parity gate compares them across the two
driver runs), and, for the sharded mode, the flattened
``shard_summary`` pipeline counters.
"""

import argparse
import json
import sys
import time

from repro.core import IUAD, IUADConfig, ShardedIUAD
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.timing import shard_summary


def bench_corpus(quick: bool):
    """The scalability sweep's largest corpus (shrunk in quick mode).

    Name pool concentrated so candidate blocks are big and pair scoring
    (the shardable work) dominates the fit — the regime sharding exists
    for.  Must stay in lockstep for both driver invocations: the parity
    gate compares their clusterings.
    """
    if quick:
        cfg = SyntheticConfig(
            n_authors=900, n_papers=2000, name_pool_size=300,
            n_communities=70, seed=7,
        )
    else:
        cfg = SyntheticConfig(
            n_authors=3500, n_papers=8000, name_pool_size=420, seed=7,
        )
    return SyntheticDBLP(cfg).generate()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["single", "sharded"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    corpus = bench_corpus(args.quick)
    corpus_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    if args.mode == "single":
        est = IUAD(IUADConfig()).fit(corpus)
    else:
        est = ShardedIUAD(IUADConfig(n_workers=args.workers)).fit(corpus)
    fit_seconds = time.perf_counter() - t0

    out = {
        "mode": args.mode,
        "corpus_seconds": corpus_seconds,
        "fit_seconds": fit_seconds,
        "n_papers": len(corpus),
        "clusterings": {
            name: sorted(
                sorted(units)
                for units in est.mention_clusters_of_name(name).values()
            )
            for name in corpus.names
        },
    }
    if args.mode == "sharded":
        out["shards"] = shard_summary(est.report_)
    json.dump(out, sys.stdout)


if __name__ == "__main__":
    main()
