"""Streaming ingestion benchmark — batched bursts vs the scalar loop.

Extends the Table-VI story (incremental cost per paper) to bursty
streams: a 1k-paper burst is ingested through
``StreamingIngestor.add_papers`` and compared against the sequential
``add_paper`` loop and against the pure *scalar* loop (the same loop
with the batch engine disabled, i.e. one ``similarity_vector`` call per
candidate pair — the pre-batching code path the motivation describes).

What the record claims, and how honestly it can claim it:

* **Parity** is asserted always, in every mode: the batched burst must
  produce the identical GCN and assignments as the sequential loop.
* **Scoring throughput**: the burst's probe-vs-existing candidate pairs
  are scored through the vectorised snapshot call and through the
  scalar per-pair path on equally warm caches; the ≥5× floor applies
  here (full mode only) — this is the slice of the hot path that
  batching can speed up without bound.
* **End-to-end papers/second** is recorded for all three paths.  It is
  bounded well below the scoring ratio by two costs every path shares:
  profile construction for each distinct candidate (the irreducible
  floor) and the genuinely order-dependent pairs, which *exact parity*
  requires re-scoring at sequential cost (``n_patched_pairs`` in the
  record).  The full-mode floor for the end-to-end number is therefore
  "meaningfully faster than the sequential loop", not 5×.

Quick mode (``BENCH_QUICK=1``) shrinks the world, asserts parity only,
and records to the untracked ``BENCH_streaming.quick.json``.
"""

import copy
import os
import random
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator, StreamingIngestor
from repro.data import Corpus
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.timing import StageTimer, streaming_summary, write_benchmark_json
from repro.model.scoring import match_scores

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
MIN_SCORING_SPEEDUP = 5.0
MIN_END_TO_END_SPEEDUP = 1.05
#: End-to-end trials per path; the best wall-clock wins (the paths are
#: deterministic, so repeated trials only shed scheduler noise).
N_TRIALS = 2
OUT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_streaming.quick.json" if QUICK else "BENCH_streaming.json"
)


def _stream_world():
    """A streaming-shaped world: ambiguous names, small labs, cheap
    profiles.  The burst then carries large same-name candidate lists
    (the regime where per-pair scalar scoring hurts) while collaboration
    stays lab-local (so intra-batch dependencies don't serialise the
    whole burst)."""
    if QUICK:
        cfg = SyntheticConfig(
            n_authors=1200, n_papers=2300, name_pool_size=90,
            name_popularity_exponent=0.0, productivity_cap=4,
            productivity_exponent=3.0, n_communities=300, lab_size=3,
            max_coauthors=2, coauthor_weight_exponent=0.3,
            external_coauthor_prob=0.0, transient_author_prob=0.3,
            seed=7,
        )
        n_burst = 150
    else:
        cfg = SyntheticConfig(
            n_authors=5000, n_papers=9000, name_pool_size=250,
            name_popularity_exponent=0.0, productivity_cap=4,
            productivity_exponent=3.0, n_communities=1200, lab_size=3,
            max_coauthors=2, coauthor_weight_exponent=0.3,
            external_coauthor_prob=0.0, transient_author_prob=0.3,
            seed=7,
        )
        n_burst = 1000
    corpus = SyntheticDBLP(cfg).generate()
    pids = sorted(p.pid for p in corpus)
    burst_pids = random.Random(13).sample(pids, n_burst)
    base = Corpus(p for p in corpus if p.pid not in set(burst_pids))
    burst = [corpus[pid] for pid in burst_pids]
    return base, burst


def _network_state(gcn):
    return (
        sorted(
            (v.vid, v.name, tuple(sorted(v.papers)),
             tuple(sorted(v.mentions.items())))
            for v in gcn
        ),
        sorted((u, v, tuple(sorted(p))) for u, v, p in gcn.edges()),
    )


def _probe_pairs(fitted, burst):
    """The burst's probe-vs-existing pair list, as the snapshot sees it.

    Built on a scratch copy: burst papers enter the corpus, one isolated
    probe per mention enters the network, and every (probe, same-name
    vertex) pair is collected.
    """
    scratch = copy.deepcopy(fitted)
    gcn, corpus = scratch.gcn_, scratch.corpus_
    probe_of: dict[tuple[int, int], int] = {}
    for paper in burst:
        corpus.add(paper)
        for position, name in enumerate(paper.authors):
            probe_of[(paper.pid, position)] = gcn.add_vertex(
                name, mentions=((paper.pid, position),)
            )
    probes = set(probe_of.values())
    pairs = []
    for paper in burst:
        for position, name in enumerate(paper.authors):
            probe = probe_of[(paper.pid, position)]
            # Candidates exactly as the snapshot enumerates them: probes
            # of not-yet-applied papers are hidden, pid owners barred.
            pairs.extend(
                (probe, vid)
                for vid in gcn.vertices_of_name(name)
                if vid not in probes and paper.pid not in gcn.papers_of(vid)
            )
    return scratch, pairs


def test_streaming_burst(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    timer = StageTimer()
    with timer.stage("corpus"):
        base, burst = _stream_world()
    with timer.stage("fit"):
        # WL radius 1: the streaming-serving configuration — profile
        # (re)builds stay cheap and stains stay lab-local.  Both paths
        # run the same config, so the comparison is apples-to-apples.
        fitted = IUAD(IUADConfig(wl_iterations=1)).fit(base)

    # ---------------- end-to-end: batched vs sequential vs scalar ----- #
    # Each path runs N_TRIALS times on fresh copies; the best wall-clock
    # is recorded (deterministic work, so extra trials only shed noise).
    bat = seq = sca = None
    bat_assignments = seq_assignments = None
    ingestor = None
    best = {"stream_batched": [], "stream_sequential": [],
            "stream_scalar_loop": []}
    for _trial in range(N_TRIALS):
        bat = copy.deepcopy(fitted)
        ingestor = StreamingIngestor(bat)
        t0 = time.perf_counter()
        bat_assignments = ingestor.add_papers(burst)
        best["stream_batched"].append(time.perf_counter() - t0)

        seq = copy.deepcopy(fitted)
        seq_stream = IncrementalDisambiguator(seq)
        t0 = time.perf_counter()
        seq_assignments = [seq_stream.add_paper(p) for p in burst]
        best["stream_sequential"].append(time.perf_counter() - t0)

        sca = copy.deepcopy(fitted)
        sca.computer_.batch_threshold = 10**9  # the pure scalar loop
        sca_stream = IncrementalDisambiguator(sca)
        t0 = time.perf_counter()
        for paper in burst:
            sca_stream.add_paper(paper)
        best["stream_scalar_loop"].append(time.perf_counter() - t0)
    for stage, seconds in best.items():
        timer.record(stage, min(seconds))

    # Parity gates every claim (asserted in quick mode too).
    assert _network_state(bat.gcn_) == _network_state(seq.gcn_)
    assert _network_state(bat.gcn_) == _network_state(sca.gcn_)
    assert [
        [(a.vid, a.created) for a in batch] for batch in bat_assignments
    ] == [[(a.vid, a.created) for a in batch] for batch in seq_assignments]

    # ---------------- scoring path: vectorised vs per-pair scalar ----- #
    scratch, pairs = _probe_pairs(fitted, burst)
    computer, model = scratch.computer_, scratch.model_
    computer.pair_matrix_batched(pairs)  # warm profiles + columnar arrays
    t0 = time.perf_counter()
    vec_scores = match_scores(model, computer.pair_matrix_batched(pairs))
    vectorised_seconds = time.perf_counter() - t0
    timer.record("score_vectorised", vectorised_seconds)
    t0 = time.perf_counter()
    scalar_scores = match_scores(model, computer.pair_matrix_perpair(pairs))
    scalar_seconds = time.perf_counter() - t0
    timer.record("score_scalar", scalar_seconds)
    np.testing.assert_allclose(vec_scores, scalar_scores, rtol=0.0, atol=1e-9)
    scoring_speedup = scalar_seconds / max(vectorised_seconds, 1e-9)

    stages = timer.as_dict()
    end_to_end_vs_sequential = (
        stages["stream_sequential"] / stages["stream_batched"]
    )
    end_to_end_vs_scalar = (
        stages["stream_scalar_loop"] / stages["stream_batched"]
    )
    stats = ingestor.last_batch
    payload = write_benchmark_json(
        OUT_PATH,
        "streaming_ingestion",
        stages,
        quick=QUICK,
        n_burst_papers=len(burst),
        n_base_papers=len(base),
        n_candidate_pairs=len(pairs),
        papers_per_second_batched=round(
            len(burst) / stages["stream_batched"], 2
        ),
        papers_per_second_sequential=round(
            len(burst) / stages["stream_sequential"], 2
        ),
        scoring_speedup_vs_scalar=round(scoring_speedup, 3),
        end_to_end_speedup_vs_sequential=round(end_to_end_vs_sequential, 3),
        end_to_end_speedup_vs_scalar_loop=round(end_to_end_vs_scalar, 3),
        parity="identical GCN + assignments (batched vs sequential vs scalar)",
        patched_pair_share=round(
            stats.n_patched_pairs / max(stats.n_scored_pairs, 1), 3
        ),
        streaming=streaming_summary(ingestor.report),
    )
    assert payload["streaming"]["n_papers"] == len(burst)

    if not QUICK:
        # The ≥5× claim lives where batching can honestly earn it: the
        # vectorised scoring of the burst's candidate pairs.
        assert scoring_speedup >= MIN_SCORING_SPEEDUP, (
            f"vectorised scoring only {scoring_speedup:.2f}x over the "
            f"scalar path (floor {MIN_SCORING_SPEEDUP}x)"
        )
        # End-to-end is bounded by shared profile builds + genuinely
        # dependent pairs (re-scored at sequential cost, by design);
        # the floor guards against the batched path regressing.
        assert end_to_end_vs_sequential >= MIN_END_TO_END_SPEEDUP, (
            f"batched burst only {end_to_end_vs_sequential:.2f}x over "
            f"the sequential loop (floor {MIN_END_TO_END_SPEEDUP}x)"
        )
    else:
        # Smoke: the batched path must stay within bounded overhead.
        assert stages["stream_batched"] <= 3.0 * max(
            stages["stream_sequential"], 0.05
        ), "batched streaming overhead exploded"
