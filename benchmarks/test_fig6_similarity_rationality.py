"""Figure 6 — rationality of the six similarity functions.

Paper: each γᵢ alone has positive influence; the venue-based similarities
(γ5 representative community, γ6 research community) are the two most
influential, while the structural ones (γ1 WL kernel, γ2 cliques) add the
least beyond Stage 1.  Shape facts: every single-γ sweep produces a
best-F above the no-merge floor, and the venue pair beats the structural
pair on best achievable F.
"""

import pytest

from repro.eval.experiments import run_fig6
from repro.eval.reporting import render_fig6
from repro.eval.metrics import micro_metrics


@pytest.fixture(scope="module")
def fig6(ctx):
    return run_fig6(ctx)


@pytest.fixture(scope="module")
def no_merge_f1(ctx):
    """MicroF of Stage 1 alone (the floor every useful γ must beat)."""
    from repro.core import IUAD, IUADConfig

    iuad = IUAD(IUADConfig(merge_rounds=1)).fit(ctx.corpus, names=ctx.testing.names)
    floor = micro_metrics(
        {n: iuad.scn_mention_clusters_of_name(n) for n in ctx.testing.names},
        ctx.truth
    )
    return floor.f1


def test_fig6_all_panels(benchmark, fig6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_fig6(fig6))
    assert set(fig6) == {
        "wl_kernel",
        "clique_coincidence",
        "interest_cosine",
        "time_consistency",
        "representative_community",
        "research_community",
    }


def test_content_similarities_have_positive_influence(benchmark, fig6, no_merge_f1):
    """The four content γs must each beat the no-merge floor somewhere in
    their sweep (the paper: all six are positive; our synthetic Stage 1
    already exhausts most structural signal, like the paper observes)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sim in (
        "interest_cosine",
        "time_consistency",
        "representative_community",
        "research_community",
    ):
        best = max(c.f1 for c in fig6[sim].values())
        assert best >= no_merge_f1 - 0.02, f"{sim} best F {best:.3f} under floor"


def test_venue_similarities_most_influential(benchmark, fig6):
    """The paper judges influence by *threshold dispersion*: "a similarity
    function is more influential ... if its threshold has larger degree of
    dispersion".  We measure dispersion as the MicroF range across the
    sweep; the venue similarities must disperse at least as much as the
    structural ones."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def dispersion(sim: str) -> float:
        f1s = [c.f1 for c in fig6[sim].values()]
        return max(f1s) - min(f1s)

    ranking = sorted(fig6, key=dispersion, reverse=True)
    print("\ninfluence ranking (MicroF dispersion):", ranking)
    venue = max(
        dispersion("representative_community"), dispersion("research_community")
    )
    # Venue similarities must be genuinely influential — their sweep must
    # move the operating point.  (The paper ranks them top-2; on our
    # synthetic corpus the structural sweep can disperse comparably, which
    # EXPERIMENTS.md records as a deviation.)
    assert venue >= 0.01


def test_sweeps_move_the_operating_point(benchmark, fig6):
    """Thresholds must trade precision against recall (non-degenerate)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    moved = 0
    for sweep in fig6.values():
        recalls = [c.recall for c in sweep.values()]
        if max(recalls) - min(recalls) > 0.01:
            moved += 1
    assert moved >= 3
