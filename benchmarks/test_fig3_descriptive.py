"""Figure 3 — descriptive analysis of the corpus (both panels).

Paper: #papers-per-name is a power law with slope ≈ −1.68 (3a) and
co-author pair frequencies follow a much steeper power law with slope
≈ −3.17 (3b).  We assert both distributions are heavy-tailed with good
log-binned fits and that 3b is distinctly steeper than 3a.
"""

from repro.data.powerlaw import (
    fit_power_law,
    pair_frequency_distribution,
    papers_per_name_distribution,
)
from repro.eval.reporting import render_fig3
from repro.eval.experiments import run_fig3


def test_fig3a_papers_per_name(benchmark, ctx):
    histogram = benchmark.pedantic(
        papers_per_name_distribution, args=(ctx.corpus,), rounds=1, iterations=1
    )
    fit = fit_power_law(histogram, log_binned=True)
    assert -3.2 <= fit.slope <= -1.2, f"3a slope {fit.slope}"
    assert fit.r_squared >= 0.85


def test_fig3b_pair_frequency(benchmark, ctx):
    histogram = benchmark.pedantic(
        pair_frequency_distribution, args=(ctx.corpus,), rounds=1, iterations=1
    )
    fit = fit_power_law(histogram, log_binned=True)
    assert -4.8 <= fit.slope <= -2.2, f"3b slope {fit.slope}"
    assert fit.r_squared >= 0.85


def test_fig3_joint_shape(benchmark, ctx):
    result = benchmark.pedantic(run_fig3, args=(ctx.corpus,), rounds=1, iterations=1)
    print("\n" + render_fig3(result))
    assert result.pair_frequency.slope < result.papers_per_name.slope - 0.5
