"""Bench: batched similarity engine vs the scalar per-pair loop.

Scores every same-name candidate pair of a ~2k-paper synthetic corpus both
ways, asserts the γ matrices agree to 1e-9 and that the batched engine is
≥5× faster, and records per-stage wall-clock to ``BENCH_similarity.json``
at the repo root (via :mod:`repro.eval.timing`) so the speedup stays
comparable across PRs.

``BENCH_QUICK=1`` switches to the CI smoke mode: a much smaller corpus and
a relaxed speedup floor (small pair lists under-amortise the engine's fixed
assembly cost, which is exactly why ``pair_matrix`` dispatches them to the
scalar path in production).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.core.candidates import candidate_pairs_of_name
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.timing import StageTimer, write_benchmark_json
from repro.graphs import build_scn
from repro.similarity import SimilarityComputer
from repro.text.embeddings import train_title_embeddings

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
MIN_SPEEDUP = 2.0 if QUICK else 5.0
# Quick mode records to a separate (untracked) file so smoke runs never
# clobber the committed full-mode record that PRs are compared against.
OUT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_similarity.quick.json" if QUICK else "BENCH_similarity.json"
)


def _bench_corpus():
    # The small name pool concentrates homonymy: candidate blocks get big
    # enough that pair scoring (not per-vertex profile work) dominates,
    # which is the regime the batched engine exists for.
    if QUICK:
        cfg = SyntheticConfig(
            n_authors=400,
            n_papers=800,
            name_pool_size=160,
            n_communities=40,
            seed=13,
        )
    else:
        cfg = SyntheticConfig(
            n_authors=1100,
            n_papers=2100,
            name_pool_size=420,
            n_communities=80,
            seed=13,
        )
    return SyntheticDBLP(cfg).generate()


def test_batched_pair_matrix_speedup(benchmark):
    timer = StageTimer()
    with timer.stage("corpus"):
        corpus = _bench_corpus()
    with timer.stage("scn_build"):
        net, _ = build_scn(corpus, eta=2)
    with timer.stage("embeddings"):
        embeddings = train_title_embeddings(p.title for p in corpus)
    computer = SimilarityComputer(net, corpus, embeddings=embeddings)

    pairs = []
    for name in net.names:
        pairs.extend(candidate_pairs_of_name(net, name))
    assert pairs, "bench corpus produced no candidate pairs"

    # Per-vertex profiles are shared by both paths; warm them first so the
    # comparison isolates pair scoring.
    with timer.stage("profile_warm"):
        for u, v in pairs:
            computer.profile(u)
            computer.profile(v)

    def best_of(fn, repeats=3):
        result, best = None, float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return result, best

    # First batched call includes mirroring profiles into columnar arrays
    # (paid once per network); the steady-state stage re-scores on the
    # warm store, which is what every merge round after the first sees.
    with timer.stage("batched_cold"):
        batched = computer.pair_matrix_batched(pairs)
    reference, perpair_seconds = best_of(
        lambda: computer.pair_matrix_perpair(pairs)
    )
    timer.record("perpair", perpair_seconds)
    batched_warm, batched_seconds = best_of(
        lambda: computer.pair_matrix_batched(pairs), repeats=5
    )
    timer.record("batched", batched_seconds)

    np.testing.assert_allclose(batched, reference, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(batched_warm, reference, rtol=0.0, atol=1e-9)

    stages = timer.as_dict()
    speedup = stages["perpair"] / max(stages["batched"], 1e-12)
    speedup_cold = stages["perpair"] / max(stages["batched_cold"], 1e-12)
    write_benchmark_json(
        OUT_PATH,
        "similarity_batch",
        stages,
        quick=QUICK,
        n_papers=len(corpus),
        n_vertices=len(net),
        n_pairs=len(pairs),
        speedup=round(speedup, 2),
        speedup_cold=round(speedup_cold, 2),
        min_speedup=MIN_SPEEDUP,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= MIN_SPEEDUP, (
        f"batched pair_matrix only {speedup:.1f}x faster than the per-pair "
        f"loop over {len(pairs)} pairs (floor {MIN_SPEEDUP}x); see {OUT_PATH}"
    )
