"""Table VI — performance and efficiency of incremental disambiguation.

Paper: streaming 100/200/300 newly published papers changes every metric
by at most ≈1–2 points, at < 50 ms per paper.  Shape facts: small metric
delta, fast per-paper cost, cost roughly flat in the stream size.
"""

import pytest

from repro.eval.experiments import run_table6
from repro.eval.reporting import render_table6


@pytest.fixture(scope="module")
def table6(ctx):
    return run_table6(ctx, stream_sizes=(100, 200, 300))


def test_table6_rows(benchmark, table6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_table6(table6))
    assert [row.n_new_papers for row in table6] == [100, 200, 300]


def test_quality_holds_after_streaming(benchmark, table6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in table6:
        assert row.after.f1 >= row.base.f1 - 0.05, (
            f"streaming {row.n_new_papers} papers dropped MicroF by "
            f"{row.base.f1 - row.after.f1:.3f}"
        )


def test_incremental_is_fast(benchmark, table6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # paper: < 50 ms per paper on the full 641k-paper DBLP; our corpus is
    # two orders smaller, so the bound is comfortably loose
    for row in table6:
        assert row.avg_ms_per_paper < 100.0


def test_cost_flat_in_stream_size(benchmark, table6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = [row.avg_ms_per_paper for row in table6]
    assert max(times) <= 5.0 * min(times)
