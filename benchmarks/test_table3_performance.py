"""Table III — IUAD against the eight baselines.

Paper's shape facts (MicroF): IUAD (0.8353) beats every baseline; the
graph-only GHOST is far last (0.2690); ANON trails the content-aware
methods.  Absolute numbers shift on the synthetic corpus — the ordering
facts asserted here are the reproduction targets.
"""

import pytest

from repro.eval.experiments import run_table3
from repro.eval.reporting import render_metrics_table


@pytest.fixture(scope="module")
def table3(ctx):
    return run_table3(ctx, include_supervised=True)


def test_table3_runs_all_methods(benchmark, ctx, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + render_metrics_table(table3))
    assert set(table3) == {
        "IUAD",
        "ANON",
        "NetE",
        "Aminer",
        "GHOST",
        "AdaBoost",
        "GBDT",
        "RF",
        "XGBoost",
    }


def test_iuad_wins_microf(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    iuad_f = table3["IUAD"].f1
    for method, counts in table3.items():
        if method != "IUAD":
            assert iuad_f >= counts.f1 - 1e-9, (
                f"{method} MicroF {counts.f1:.4f} beats IUAD {iuad_f:.4f}"
            )


def test_iuad_beats_unsupervised_clearly(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for method in ("ANON", "NetE", "GHOST"):
        assert table3["IUAD"].f1 > table3[method].f1 + 0.02


def test_ghost_is_last(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ghost_f = table3["GHOST"].f1
    others = [c.f1 for m, c in table3.items() if m not in ("GHOST", "ANON")]
    assert all(ghost_f < f for f in others)


def test_iuad_absolute_band(benchmark, table3):
    """IUAD lands in the paper's quality region (MicroF ≈ 0.84)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    counts = table3["IUAD"]
    assert counts.f1 >= 0.70
    assert counts.accuracy >= 0.70
