"""Serving load test: reads must not block on ingest.

The acceptance claim of the serving layer (``repro.service``): because
reads answer from an immutable, atomically-swapped
:class:`~repro.service.view.FittedView`, a continuous ingest stream is
not allowed to wreck read latency.  The harness
(``benchmarks/_serving_driver.py``) starts ``tools/serve.py`` as a real
subprocess on a snapshot, measures read latency against the quiet
server (idle baseline), then re-measures with a writer client streaming
papers the whole time, and finally pulls ``GET /clusters`` to check the
served clustering against a **serial** replay of the exact same ingest
sequence on a local restore of the same snapshot.

Asserted in every mode:

* liveness — reads keep answering (zero transport/5xx errors) while
  ingest runs, and at least one swap was published;
* parity — the post-run clustering equals the serial replay exactly
  (vids included): burst coalescing changed nothing.

Asserted in full mode only (the 1-core CI box is too noisy for a quick
latency floor): loaded read p99 ≤ 5× idle read p99.  The ratio is
recorded in every mode.

Quick mode (``BENCH_QUICK=1``) serves the committed fixture snapshot
and records to the untracked ``BENCH_serving.quick.json``; full mode
fits a synthetic world first and commits ``BENCH_serving.json``.
"""

from __future__ import annotations

import os
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _serving_driver import drive, serial_replay_clusters  # noqa: E402

from repro.core import IUAD, IUADConfig
from repro.data import Corpus
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP
from repro.eval.timing import serving_summary, write_benchmark_json
from repro.io import Snapshot, snapshot_of
from repro.io.schema import encode_paper

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
MAX_P99_RATIO = 5.0
OUT_PATH = REPO_ROOT / (
    "BENCH_serving.quick.json" if QUICK else "BENCH_serving.json"
)
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "snapshot_v1.jsonl"


def _mentions_of(snapshot_path: Path) -> list[tuple[str, int, int]]:
    """Every (name, pid, position) the snapshot's view can answer."""
    snapshot = Snapshot.load(snapshot_path)
    return sorted(
        (vertex.name, pid, position)
        for vertex in snapshot.gcn
        for pid, position in vertex.mentions.items()
    )


def _quick_world(tmp_path: Path):
    """Serve the committed fixture; ingest synthetic probes at fresh pids.

    The probes reuse fixture names, so attach-vs-create decisions are
    real, and sit at pids far above the fixture's (0–8) so nothing
    collides with the warm-started corpus.
    """
    names = ["X Y", "P A", "Q B", "R C", "S D"]
    rng = random.Random(11)
    papers = [
        {
            "pid": 100 + i,
            "authors": rng.sample(names, rng.randint(1, 2)),
            "title": f"probe paper {i} on snapshot serving",
            "venue": rng.choice(["VLDB", "CVPR"]),
            "year": 2015 + (i % 8),
        }
        for i in range(24)
    ]
    return dict(
        snapshot=FIXTURE, papers=papers, n_clients=2, burst_size=6,
        idle_duration=1.5, min_load_duration=1.5, pacing=0.3,
    )


def _full_world(tmp_path: Path):
    """Fit a synthetic world, snapshot it, hold out an ingest stream."""
    cfg = SyntheticConfig(
        n_authors=1200, n_papers=2300, name_pool_size=90,
        name_popularity_exponent=0.0, productivity_cap=4,
        productivity_exponent=3.0, n_communities=300, lab_size=3,
        max_coauthors=2, coauthor_weight_exponent=0.3,
        external_coauthor_prob=0.0, transient_author_prob=0.3,
        seed=7,
    )
    corpus = SyntheticDBLP(cfg).generate()
    pids = sorted(p.pid for p in corpus)
    burst_pids = random.Random(13).sample(pids, 150)
    base = Corpus(p for p in corpus if p.pid not in set(burst_pids))
    burst = [corpus[pid] for pid in burst_pids]
    estimator = IUAD(IUADConfig(wl_iterations=1)).fit(base)
    snapshot_path = tmp_path / "serving_world.jsonl"
    snapshot_of(estimator).save(snapshot_path)
    return dict(
        snapshot=snapshot_path,
        papers=[encode_paper(p) for p in burst],
        n_clients=4, burst_size=10,
        idle_duration=4.0, min_load_duration=6.0, pacing=0.35,
    )


def test_serving_load(tmp_path):
    world = _quick_world(tmp_path) if QUICK else _full_world(tmp_path)
    snapshot_path = world["snapshot"]
    results = drive(
        snapshot_path,
        _mentions_of(snapshot_path),
        world["papers"],
        n_clients=world["n_clients"],
        burst_size=world["burst_size"],
        idle_duration=world["idle_duration"],
        min_load_duration=world["min_load_duration"],
        pacing=world["pacing"],
    )
    idle = results["idle_reads"]
    loaded = results["loaded_reads"]
    ingest = results["ingest"]

    # ---- liveness: reads kept flowing, errorless, while ingest ran ---- #
    assert idle.latencies, "idle phase produced no read samples"
    assert loaded.latencies, "loaded phase produced no read samples"
    assert idle.n_errors == 0, f"{idle.n_errors} idle read errors"
    assert loaded.n_errors == 0, f"{loaded.n_errors} loaded read errors"
    assert ingest.n_errors == 0, f"{ingest.n_errors} ingest errors"
    assert ingest.n_papers == len(world["papers"])
    assert results["n_swaps"] >= 1, "ingest published no view swaps"

    # ---- parity: served clustering == serial replay, exactly ---------- #
    replay = serial_replay_clusters(snapshot_path, world["papers"])
    assert results["server_clusters"] == replay, (
        "served clustering diverged from the serial add_paper replay of "
        "the same ingest sequence"
    )

    summary = serving_summary(
        idle.latencies,
        loaded.latencies,
        read_wall_seconds=results["load_wall"],
        n_ingested_papers=ingest.n_papers,
        ingest_wall_seconds=ingest.wall_seconds,
        n_swaps=results["n_swaps"],
    )
    payload = write_benchmark_json(
        OUT_PATH,
        "serving_load",
        {
            "idle_read_phase": results["idle_wall"],
            "loaded_read_phase": results["load_wall"],
            "ingest_stream": ingest.wall_seconds,
        },
        quick=QUICK,
        n_clients=world["n_clients"],
        burst_size=world["burst_size"],
        n_ingest_papers=len(world["papers"]),
        # papers/sec over burst time alone (the wall-clock figure in
        # `serving` includes the pacing think-time between bursts)
        papers_per_sec_applied=round(
            ingest.n_papers / max(sum(ingest.burst_latencies), 1e-9), 2
        ),
        final_generation=results["final_generation"],
        server_stats=results["server_stats"],
        parity="served /clusters identical to serial add_paper replay",
        serving=summary,
    )
    assert payload["serving"]["n_swaps"] == results["n_swaps"]

    if not QUICK:
        ratio = summary["read_p99_ratio_loaded_vs_idle"]
        assert ratio <= MAX_P99_RATIO, (
            f"read p99 degraded {ratio:.2f}x under continuous ingest "
            f"(floor {MAX_P99_RATIO}x): loaded "
            f"{summary['loaded_read_p99_ms']}ms vs idle "
            f"{summary['idle_read_p99_ms']}ms"
        )
