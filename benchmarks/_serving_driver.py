"""Load-generation harness for the disambiguation service.

Drives a ``tools/serve.py`` **subprocess** (own interpreter, own GIL —
the measurement is honest about process isolation) with a mixed
read/ingest workload:

1. **Server** — started on an ephemeral port, warm-started from a
   snapshot; readiness is the ``SERVING <url> ...`` stdout line plus a
   ``/healthz`` poll.
2. **Idle read phase** — N concurrent reader threads hammer
   ``GET /who-is`` / ``GET /resolve`` over keep-alive connections
   against the quiet server; per-request latencies are the idle
   baseline.
3. **Loaded read phase** — the same readers run again while one ingest
   client streams papers in fixed-order bursts (``POST /ingest`` with
   ``wait=true``, so the stream is continuous and backpressured).  The
   acceptance claim lives here: read p99 must stay within 5× the idle
   p99, because reads only ever touch the immutable published view.
4. **Parity** — after the load, ``GET /clusters`` dumps the server's
   clustering, which must match a *serial* ``add_paper``-equivalent
   replay of the same ingest sequence on a local restore of the same
   snapshot, exactly (vids included).

Used by ``benchmarks/test_serving.py`` (which owns quick/full mode and
the ``BENCH_serving.json`` record) and runnable standalone::

    PYTHONPATH=src python benchmarks/_serving_driver.py \\
        tests/fixtures/snapshot_v1.jsonl
"""

from __future__ import annotations

import http.client
import json
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence
from urllib.parse import quote

REPO_ROOT = Path(__file__).resolve().parents[1]
SERVE = REPO_ROOT / "tools" / "serve.py"


# --------------------------------------------------------------------- #
# server subprocess
# --------------------------------------------------------------------- #
class ServerProcess:
    """A ``tools/serve.py`` child on an ephemeral port."""

    def __init__(self, snapshot: str | Path, extra_args: Sequence[str] = ()):
        self.proc = subprocess.Popen(
            [sys.executable, str(SERVE), "--snapshot", str(snapshot),
             "--port", "0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.url: str | None = None
        self.host = "127.0.0.1"
        self.port = 0

    def wait_ready(self, timeout: float = 60.0) -> str:
        """Block until the SERVING line appears and /healthz answers."""
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server exited early (rc={self.proc.poll()})"
                )
            if line.startswith("SERVING "):
                self.url = line.split()[1]
                break
        if self.url is None:
            raise TimeoutError("server never announced SERVING")
        _scheme, _, hostport = self.url.partition("://")
        self.host, _, port = hostport.partition(":")
        self.port = int(port)
        while time.monotonic() < deadline:
            try:
                status, payload = self.get("/healthz")
            except OSError:
                time.sleep(0.05)
                continue
            if status == 200 and payload.get("status") == "ok":
                return self.url
            time.sleep(0.05)
        raise TimeoutError("/healthz never turned ok")

    def get(self, path: str) -> tuple[int, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def post(self, path: str, payload: Any) -> tuple[int, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            conn.request(
                "POST", path, body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def stop(self) -> str:
        """Terminate and return the child's remaining output (for debug)."""
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        out = self.proc.stdout.read() if self.proc.stdout else ""
        return out or ""


# --------------------------------------------------------------------- #
# client threads
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class ReadStats:
    latencies: list[float] = field(default_factory=list)
    n_errors: int = 0
    n_not_found: int = 0


def _read_worker(
    host: str,
    port: int,
    mentions: Sequence[tuple[str, int, int]],
    stop: threading.Event,
    stats: ReadStats,
    seed: int,
) -> None:
    """One reader: alternating who-is / resolve over a keep-alive conn."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    i = seed
    latencies: list[float] = []
    try:
        while not stop.is_set():
            name, pid, position = mentions[i % len(mentions)]
            if i % 2 == 0:
                path = (
                    f"/who-is?name={quote(name)}&pid={pid}"
                    f"&position={position}"
                )
            else:
                path = f"/resolve?name={quote(name)}&pid={pid}"
            i += 1
            t0 = time.perf_counter()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
            except (OSError, http.client.HTTPException):
                stats.n_errors += 1
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
                continue
            latencies.append(time.perf_counter() - t0)
            if response.status == 404:
                stats.n_not_found += 1
            elif response.status != 200 or not body:
                stats.n_errors += 1
    finally:
        conn.close()
        stats.latencies.extend(latencies)


def run_read_phase(
    server: ServerProcess,
    mentions: Sequence[tuple[str, int, int]],
    n_clients: int,
    duration: float,
) -> tuple[ReadStats, float]:
    """Run N readers for ``duration`` seconds; returns stats + wall."""
    stop = threading.Event()
    stats = ReadStats()
    threads = [
        threading.Thread(
            target=_read_worker,
            args=(server.host, server.port, mentions, stop, stats, k * 7919),
            daemon=True,
        )
        for k in range(n_clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    return stats, time.perf_counter() - t0


@dataclass(slots=True)
class IngestStats:
    burst_latencies: list[float] = field(default_factory=list)
    n_papers: int = 0
    n_errors: int = 0
    wall_seconds: float = 0.0


def _ingest_worker(
    server: ServerProcess,
    papers: Sequence[dict],
    burst_size: int,
    stats: IngestStats,
    done: threading.Event,
    pacing: float = 0.0,
) -> None:
    """The single writer client: fixed-order bursts, wait=true each.

    ``pacing`` seconds of think time between bursts spreads the stream
    over the whole measurement window — the "continuous ingest" regime —
    instead of front-loading every burst into the first instants.

    One client, sequential posts — the ingest sequence observed by the
    server is exactly ``papers`` in order, which is what the parity
    replay reproduces serially.
    """
    t0 = time.perf_counter()
    try:
        for start in range(0, len(papers), burst_size):
            burst = list(papers[start: start + burst_size])
            t1 = time.perf_counter()
            try:
                status, _payload = server.post(
                    "/ingest", {"papers": burst, "wait": True}
                )
            except (OSError, http.client.HTTPException):
                stats.n_errors += 1
                continue
            stats.burst_latencies.append(time.perf_counter() - t1)
            if status == 200:
                stats.n_papers += len(burst)
            else:
                stats.n_errors += 1
            if pacing and start + burst_size < len(papers):
                time.sleep(pacing)
    finally:
        stats.wall_seconds = time.perf_counter() - t0
        done.set()


def run_load_phase(
    server: ServerProcess,
    mentions: Sequence[tuple[str, int, int]],
    papers: Sequence[dict],
    n_clients: int,
    burst_size: int,
    min_duration: float = 0.0,
    pacing: float = 0.0,
) -> tuple[ReadStats, IngestStats, float]:
    """Readers + the continuous ingest stream, concurrently.

    Readers run until the whole ingest sequence is applied (and at least
    ``min_duration`` seconds); ``pacing`` spreads the bursts across the
    window so the read samples overlap an *active* writer — bursts
    applying, views swapping — for the whole phase, not just its start.
    """
    stop = threading.Event()
    read_stats = ReadStats()
    ingest_stats = IngestStats()
    ingest_done = threading.Event()
    readers = [
        threading.Thread(
            target=_read_worker,
            args=(server.host, server.port, mentions, stop, read_stats,
                  k * 104729),
            daemon=True,
        )
        for k in range(n_clients)
    ]
    writer = threading.Thread(
        target=_ingest_worker,
        args=(server, papers, burst_size, ingest_stats, ingest_done,
              pacing),
        daemon=True,
    )
    t0 = time.perf_counter()
    for thread in readers:
        thread.start()
    writer.start()
    ingest_done.wait(timeout=600)
    remaining = min_duration - (time.perf_counter() - t0)
    if remaining > 0:
        time.sleep(remaining)
    stop.set()
    writer.join(timeout=30)
    for thread in readers:
        thread.join(timeout=30)
    return read_stats, ingest_stats, time.perf_counter() - t0


# --------------------------------------------------------------------- #
# parity
# --------------------------------------------------------------------- #
def canonical_clusters(dump: dict) -> dict[str, dict[int, tuple]]:
    """Server ``/clusters`` payload -> comparable canonical form."""
    return {
        name: {
            int(vid): tuple(sorted(map(tuple, mentions)))
            for vid, mentions in vid_map.items()
        }
        for name, vid_map in dump.items()
    }


def serial_replay_clusters(
    snapshot_path: str | Path, papers: Sequence[dict]
) -> dict[str, dict[int, tuple]]:
    """Restore the snapshot locally and replay the ingest serially.

    Uses the sequential ``add_paper`` loop — the reference the
    ``add_papers`` parity contract is stated against — so an exact match
    proves the server's burst coalescing changed nothing.
    """
    from repro.core import IncrementalDisambiguator
    from repro.io import Snapshot
    from repro.io.schema import decode_paper
    from repro.service import FittedView

    estimator = Snapshot.load(snapshot_path).restore()
    stream = IncrementalDisambiguator(estimator)
    for record in papers:
        stream.add_paper(decode_paper(record))
    view = FittedView.of(estimator)
    return canonical_clusters(view.as_clusters_dict())


# --------------------------------------------------------------------- #
# one full run
# --------------------------------------------------------------------- #
def drive(
    snapshot_path: str | Path,
    mentions: Sequence[tuple[str, int, int]],
    papers: Sequence[dict],
    *,
    n_clients: int = 4,
    burst_size: int = 10,
    idle_duration: float = 3.0,
    min_load_duration: float = 0.0,
    pacing: float = 0.0,
    server_args: Sequence[str] = (),
) -> dict[str, Any]:
    """Full protocol: start, idle phase, loaded phase, parity, stop."""
    server = ServerProcess(snapshot_path, extra_args=server_args)
    try:
        server.wait_ready()
        status, health = server.get("/healthz")
        assert status == 200 and health["status"] == "ok", health

        idle_stats, idle_wall = run_read_phase(
            server, mentions, n_clients, idle_duration
        )
        swaps_before = server.get("/stats")[1]["n_swaps"]
        read_stats, ingest_stats, load_wall = run_load_phase(
            server, mentions, papers, n_clients, burst_size,
            min_duration=min_load_duration, pacing=pacing,
        )
        stats = server.get("/stats")[1]
        dump_status, dump = server.get("/clusters")
        assert dump_status == 200
        server_clusters = canonical_clusters(dump["clusters"])
        return {
            "idle_reads": idle_stats,
            "idle_wall": idle_wall,
            "loaded_reads": read_stats,
            "ingest": ingest_stats,
            "load_wall": load_wall,
            "n_swaps": stats["n_swaps"] - swaps_before,
            "server_stats": stats,
            "server_clusters": server_clusters,
            "final_generation": dump["generation"],
        }
    finally:
        tail = server.stop()
        if tail.strip():
            print(f"--- server output ---\n{tail}", file=sys.stderr)


def _main(argv: Sequence[str]) -> int:
    """Standalone smoke run against a snapshot (fixture by default)."""
    from repro.io import Snapshot

    snapshot_path = Path(
        argv[0] if argv
        else REPO_ROOT / "tests" / "fixtures" / "snapshot_v1.jsonl"
    )
    snapshot = Snapshot.load(snapshot_path)
    mentions = [
        (vertex.name, pid, position)
        for vertex in snapshot.gcn
        for pid, position in vertex.mentions.items()
    ]
    papers = [
        {"pid": 9000 + i, "authors": ["X Y", "P A"],
         "title": f"probe paper {i}", "venue": "VLDB", "year": 2010 + i}
        for i in range(20)
    ]
    results = drive(
        snapshot_path, mentions, papers,
        n_clients=2, burst_size=5, idle_duration=1.0,
    )
    replay = serial_replay_clusters(snapshot_path, papers)
    parity = results["server_clusters"] == replay
    print(
        json.dumps(
            {
                "n_idle_reads": len(results["idle_reads"].latencies),
                "n_loaded_reads": len(results["loaded_reads"].latencies),
                "read_errors": results["loaded_reads"].n_errors,
                "n_swaps": results["n_swaps"],
                "papers_ingested": results["ingest"].n_papers,
                "parity": parity,
            },
            indent=2,
        )
    )
    return 0 if parity and not results["loaded_reads"].n_errors else 1


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(_main(sys.argv[1:]))
