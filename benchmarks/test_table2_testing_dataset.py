"""Table II — descriptive statistics of the testing dataset.

Paper: 50 names, 336 distinct authors, 1,529 testing papers; per-name
author counts range 2–17.  Our testing subset is built with the same
protocol on the synthetic corpus and must match the profile.
"""

from repro.data.testing import render_table2
from repro.eval.experiments import run_table2


def test_table2_profile(benchmark, ctx):
    result = benchmark.pedantic(
        run_table2, args=(ctx.testing,), rounds=1, iterations=1
    )
    print("\n" + render_table2(result.rows[:10], (result.total_authors, result.total_papers)))
    assert len(result.rows) == 50
    author_counts = [row.num_authors for row in result.rows]
    assert min(author_counts) >= 2
    assert max(author_counts) <= 17
    # hundreds of distinct authors overall, like the paper's 336
    assert 100 <= result.total_authors <= 800
    assert result.total_papers >= 500
