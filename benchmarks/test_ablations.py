"""Ablations of the design choices DESIGN.md calls out.

Not a paper exhibit — these benches quantify the knobs the paper leaves
implicit: η, triangle certification, the triangle-instance guard, EM
sample rate, vertex-splitting balance, and the second merge round.
"""

import pytest

from repro.core import IUAD, IUADConfig
from repro.eval.metrics import micro_metrics
from repro.graphs import build_scn


def _gcn_metrics(ctx, config):
    iuad = IUAD(config).fit(ctx.corpus, names=ctx.testing.names)
    return micro_metrics(
        {n: iuad.mention_clusters_of_name(n) for n in ctx.testing.names},
        ctx.truth
    )


def _scn_metrics(ctx, **kwargs):
    net, _ = build_scn(ctx.corpus, **kwargs)
    return micro_metrics(
        {n: net.mention_clusters_of_name(n) for n in ctx.testing.names},
        ctx.truth
    )


class TestEtaSweep:
    """η trades Stage-1 recall against precision."""

    @pytest.fixture(scope="class")
    def sweep(self, ctx):
        return {eta: _scn_metrics(ctx, eta=eta) for eta in (2, 3, 4)}

    def test_recall_decreases_with_eta(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        recalls = [sweep[e].recall for e in (2, 3, 4)]
        assert recalls[0] >= recalls[1] >= recalls[2]

    def test_precision_stays_high(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for eta, counts in sweep.items():
            assert counts.precision >= 0.85, f"eta={eta}"


class TestTriangleGuards:
    def test_certification_protects_precision(self, benchmark, ctx):
        on = benchmark.pedantic(
            _scn_metrics, args=(ctx,), kwargs={"certify_triangles": True},
            rounds=1, iterations=1,
        )
        off = _scn_metrics(ctx, certify_triangles=False)
        assert on.precision >= off.precision

    def test_triangle_instance_guard_protects_precision(self, benchmark, ctx):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        strict = _scn_metrics(ctx, require_triangle_instance=True)
        loose = _scn_metrics(ctx, require_triangle_instance=False)
        assert strict.precision >= loose.precision


class TestStage2Knobs:
    def test_second_merge_round_trades_precision_for_recall(self, benchmark, ctx):
        two = benchmark.pedantic(
            _gcn_metrics, args=(ctx, IUADConfig(merge_rounds=2)),
            rounds=1, iterations=1,
        )
        one = _gcn_metrics(ctx, IUADConfig(merge_rounds=1))
        assert two.recall >= one.recall - 1e-9
        assert two.f1 >= one.f1 - 0.05

    def test_sample_rate_tenth_matches_full(self, benchmark, ctx):
        """Training on 10% of candidate pairs (the paper's efficiency trick)
        must not cost much quality vs training on all pairs."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        tenth = _gcn_metrics(ctx, IUADConfig(sample_rate=0.10))
        full = _gcn_metrics(ctx, IUADConfig(sample_rate=1.0))
        assert tenth.f1 >= full.f1 - 0.08

    def test_balance_split_helps_or_holds(self, benchmark, ctx):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        with_split = _gcn_metrics(ctx, IUADConfig(balance_split=True))
        without = _gcn_metrics(ctx, IUADConfig(balance_split=False))
        assert with_split.f1 >= without.f1 - 0.05

    def test_wl_depth_insensitive(self, benchmark, ctx):
        """Structural similarity is weak (paper Fig 6); h should not swing
        the outcome."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        h1 = _gcn_metrics(ctx, IUADConfig(wl_iterations=1))
        h3 = _gcn_metrics(ctx, IUADConfig(wl_iterations=3))
        assert abs(h1.f1 - h3.f1) <= 0.10
