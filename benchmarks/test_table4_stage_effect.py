"""Table IV — effect of the two stages.

Paper: SCN alone has high precision (0.8662) but recall 0.4374; the GCN
stage lifts recall to 0.8113 (+0.37) and MicroF by +0.25 while precision
moves only −0.005.  Shape facts: big recall/F gains, SCN precision high,
GCN precision within a moderate drop of SCN's.
"""

from repro.eval.experiments import run_table4
from repro.eval.reporting import render_table4


def test_table4_stage_effect(benchmark, ctx):
    result = benchmark.pedantic(run_table4, args=(ctx,), rounds=1, iterations=1)
    print("\n" + render_table4(result))
    d_accuracy, d_precision, d_recall, d_f1 = result.improvements

    assert result.scn.precision >= 0.85, "Stage 1 must be high-precision"
    assert result.scn.recall <= 0.65, "Stage 1 alone must leave recall low"
    assert d_recall >= 0.20, "GCN stage must add large recall"
    assert d_f1 >= 0.10, "GCN stage must lift MicroF substantially"
    assert d_accuracy > 0.0
    # precision may dip when recall explodes, but must stay in the same
    # regime (the paper loses 0.5pt; we allow a wider band on synthetic)
    assert result.gcn.precision >= result.scn.precision - 0.30
    assert result.gcn.f1 >= 0.70
